#!/usr/bin/env python3
"""Quickstart: compare Push Multicast against the prefetching baseline.

Runs the paper's flagship workload (cachebw — every core repeatedly
scans one shared array that exceeds its private L2) under the
L1Bingo-L2Stride baseline and under Push Multicast (OrdPush), then
prints the headline metrics: speedup, NoC traffic saving, L2 MPKI, and
push accuracy.

Usage::

    python examples/quickstart.py [--cores 16]
"""

from __future__ import annotations

import argparse

from repro.sim.config import bench_kwargs
from repro.sim.runner import run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=16,
                        help="core count (square: 16 or 64)")
    args = parser.parse_args()

    print(f"Simulating cachebw on {args.cores} cores "
          f"({args.cores} LLC slices, mesh NoC)...")
    baseline = run_workload("cachebw", "baseline", num_cores=args.cores,
                            **bench_kwargs())
    print(f"  baseline : {baseline.summary()}")
    ordpush = run_workload("cachebw", "ordpush", num_cores=args.cores,
                           **bench_kwargs())
    print(f"  ordpush  : {ordpush.summary()}")

    print()
    print(f"speedup over L1Bingo-L2Stride : "
          f"{ordpush.speedup_over(baseline):.2f}x")
    print(f"NoC traffic vs baseline       : "
          f"{ordpush.traffic_vs(baseline):.2f} "
          f"({1 - ordpush.traffic_vs(baseline):.0%} saved)")
    print(f"L2 MPKI                       : "
          f"{baseline.l2_mpki:.0f} -> {ordpush.l2_mpki:.0f}")
    print(f"push accuracy                 : "
          f"{ordpush.push_accuracy():.0%}")
    print(f"read requests filtered in-NoC : "
          f"{ordpush.requests_filtered}")
    print(f"mean push multicast degree    : "
          f"{ordpush.mean_push_degree:.1f} "
          f"(of {args.cores} possible sharers)")


if __name__ == "__main__":
    main()
