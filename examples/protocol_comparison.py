#!/usr/bin/env python3
"""Compare every evaluated scheme across a workload sweep.

Reproduces a miniature Fig. 11: for each selected workload, runs the
prefetching baseline, LLC request Coalescing, MSP-style unicast pushing,
and both Push Multicast protocols (PushAck, OrdPush), printing speedup
and normalized traffic.

Usage::

    python examples/protocol_comparison.py [--workloads cachebw mv ...]
"""

from __future__ import annotations

import argparse

from repro.sim.config import bench_kwargs
from repro.sim.runner import run_workload
from repro.workloads.registry import workload_names

DEFAULT_WORKLOADS = ("cachebw", "multilevel", "particlefilter", "mv",
                     "bfs")
CONFIGS = ("coalesce", "msp", "pushack", "ordpush")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS),
                        choices=workload_names(),
                        help="workloads to sweep")
    parser.add_argument("--cores", type=int, default=16)
    args = parser.parse_args()

    header = f"{'workload':16s}" + "".join(
        f"{config:>18s}" for config in CONFIGS)
    print(header)
    print("-" * len(header))
    for workload in args.workloads:
        baseline = run_workload(workload, "baseline",
                                num_cores=args.cores, **bench_kwargs())
        cells = []
        for config in CONFIGS:
            result = run_workload(workload, config,
                                  num_cores=args.cores, **bench_kwargs())
            speedup = result.speedup_over(baseline)
            traffic = result.traffic_vs(baseline)
            cells.append(f"{speedup:5.2f}x /{traffic:5.2f}f")
        print(f"{workload:16s}" + "".join(f"{c:>18s}" for c in cells))
    print("\n(speedup over baseline / NoC flits normalized to baseline)")


if __name__ == "__main__":
    main()
